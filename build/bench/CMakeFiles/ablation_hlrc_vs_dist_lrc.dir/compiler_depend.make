# Empty compiler generated dependencies file for ablation_hlrc_vs_dist_lrc.
# This may be replaced when dependencies are built.
