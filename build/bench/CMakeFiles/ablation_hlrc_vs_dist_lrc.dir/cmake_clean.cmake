file(REMOVE_RECURSE
  "CMakeFiles/ablation_hlrc_vs_dist_lrc.dir/ablation_hlrc_vs_dist_lrc.cpp.o"
  "CMakeFiles/ablation_hlrc_vs_dist_lrc.dir/ablation_hlrc_vs_dist_lrc.cpp.o.d"
  "ablation_hlrc_vs_dist_lrc"
  "ablation_hlrc_vs_dist_lrc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hlrc_vs_dist_lrc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
