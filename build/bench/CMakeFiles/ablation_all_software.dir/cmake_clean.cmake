file(REMOVE_RECURSE
  "CMakeFiles/ablation_all_software.dir/ablation_all_software.cpp.o"
  "CMakeFiles/ablation_all_software.dir/ablation_all_software.cpp.o.d"
  "ablation_all_software"
  "ablation_all_software.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_all_software.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
