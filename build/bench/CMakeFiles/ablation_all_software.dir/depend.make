# Empty dependencies file for ablation_all_software.
# This may be replaced when dependencies are built.
