file(REMOVE_RECURSE
  "CMakeFiles/table3_lu_faults.dir/fault_table.cpp.o"
  "CMakeFiles/table3_lu_faults.dir/fault_table.cpp.o.d"
  "table3_lu_faults"
  "table3_lu_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_lu_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
