# Empty dependencies file for table3_lu_faults.
# This may be replaced when dependencies are built.
