# Empty compiler generated dependencies file for table1_seqtimes.
# This may be replaced when dependencies are built.
