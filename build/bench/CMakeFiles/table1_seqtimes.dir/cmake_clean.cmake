file(REMOVE_RECURSE
  "CMakeFiles/table1_seqtimes.dir/table1_seqtimes.cpp.o"
  "CMakeFiles/table1_seqtimes.dir/table1_seqtimes.cpp.o.d"
  "table1_seqtimes"
  "table1_seqtimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_seqtimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
