# Empty compiler generated dependencies file for net_microbench.
# This may be replaced when dependencies are built.
