file(REMOVE_RECURSE
  "CMakeFiles/net_microbench.dir/net_microbench.cpp.o"
  "CMakeFiles/net_microbench.dir/net_microbench.cpp.o.d"
  "net_microbench"
  "net_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
