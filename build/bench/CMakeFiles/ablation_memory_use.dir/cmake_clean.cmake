file(REMOVE_RECURSE
  "CMakeFiles/ablation_memory_use.dir/ablation_memory_use.cpp.o"
  "CMakeFiles/ablation_memory_use.dir/ablation_memory_use.cpp.o.d"
  "ablation_memory_use"
  "ablation_memory_use.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_memory_use.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
