# Empty dependencies file for ablation_memory_use.
# This may be replaced when dependencies are built.
