file(REMOVE_RECURSE
  "CMakeFiles/table10_water_spatial_faults.dir/fault_table.cpp.o"
  "CMakeFiles/table10_water_spatial_faults.dir/fault_table.cpp.o.d"
  "table10_water_spatial_faults"
  "table10_water_spatial_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_water_spatial_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
