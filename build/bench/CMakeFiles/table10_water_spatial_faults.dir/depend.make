# Empty dependencies file for table10_water_spatial_faults.
# This may be replaced when dependencies are built.
