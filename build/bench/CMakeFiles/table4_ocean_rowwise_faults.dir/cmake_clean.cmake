file(REMOVE_RECURSE
  "CMakeFiles/table4_ocean_rowwise_faults.dir/fault_table.cpp.o"
  "CMakeFiles/table4_ocean_rowwise_faults.dir/fault_table.cpp.o.d"
  "table4_ocean_rowwise_faults"
  "table4_ocean_rowwise_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_ocean_rowwise_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
