# Empty compiler generated dependencies file for table4_ocean_rowwise_faults.
# This may be replaced when dependencies are built.
