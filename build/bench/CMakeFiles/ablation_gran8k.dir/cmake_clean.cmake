file(REMOVE_RECURSE
  "CMakeFiles/ablation_gran8k.dir/ablation_gran8k.cpp.o"
  "CMakeFiles/ablation_gran8k.dir/ablation_gran8k.cpp.o.d"
  "ablation_gran8k"
  "ablation_gran8k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gran8k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
