# Empty compiler generated dependencies file for ablation_gran8k.
# This may be replaced when dependencies are built.
