# Empty dependencies file for table13_barnes_original_faults.
# This may be replaced when dependencies are built.
