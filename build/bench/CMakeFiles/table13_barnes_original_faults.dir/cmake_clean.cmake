file(REMOVE_RECURSE
  "CMakeFiles/table13_barnes_original_faults.dir/fault_table.cpp.o"
  "CMakeFiles/table13_barnes_original_faults.dir/fault_table.cpp.o.d"
  "table13_barnes_original_faults"
  "table13_barnes_original_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table13_barnes_original_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
