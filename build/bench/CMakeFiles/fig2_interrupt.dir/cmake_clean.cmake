file(REMOVE_RECURSE
  "CMakeFiles/fig2_interrupt.dir/fig2_interrupt.cpp.o"
  "CMakeFiles/fig2_interrupt.dir/fig2_interrupt.cpp.o.d"
  "fig2_interrupt"
  "fig2_interrupt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_interrupt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
