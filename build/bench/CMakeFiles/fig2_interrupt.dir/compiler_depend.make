# Empty compiler generated dependencies file for fig2_interrupt.
# This may be replaced when dependencies are built.
