# Empty compiler generated dependencies file for table5_ocean_original_faults.
# This may be replaced when dependencies are built.
