file(REMOVE_RECURSE
  "CMakeFiles/table5_ocean_original_faults.dir/fault_table.cpp.o"
  "CMakeFiles/table5_ocean_original_faults.dir/fault_table.cpp.o.d"
  "table5_ocean_original_faults"
  "table5_ocean_original_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_ocean_original_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
