file(REMOVE_RECURSE
  "CMakeFiles/table12_barnes_spatial_faults.dir/fault_table.cpp.o"
  "CMakeFiles/table12_barnes_spatial_faults.dir/fault_table.cpp.o.d"
  "table12_barnes_spatial_faults"
  "table12_barnes_spatial_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table12_barnes_spatial_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
