# Empty dependencies file for table12_barnes_spatial_faults.
# This may be replaced when dependencies are built.
