# Empty dependencies file for table7_water_nsquared_faults.
# This may be replaced when dependencies are built.
