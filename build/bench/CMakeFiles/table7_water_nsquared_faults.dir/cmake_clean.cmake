file(REMOVE_RECURSE
  "CMakeFiles/table7_water_nsquared_faults.dir/fault_table.cpp.o"
  "CMakeFiles/table7_water_nsquared_faults.dir/fault_table.cpp.o.d"
  "table7_water_nsquared_faults"
  "table7_water_nsquared_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_water_nsquared_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
