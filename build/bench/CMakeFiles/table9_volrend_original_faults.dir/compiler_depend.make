# Empty compiler generated dependencies file for table9_volrend_original_faults.
# This may be replaced when dependencies are built.
