# Empty dependencies file for table2_classification.
# This may be replaced when dependencies are built.
