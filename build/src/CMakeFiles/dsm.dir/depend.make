# Empty dependencies file for dsm.
# This may be replaced when dependencies are built.
