
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/barnes.cpp" "src/CMakeFiles/dsm.dir/apps/barnes.cpp.o" "gcc" "src/CMakeFiles/dsm.dir/apps/barnes.cpp.o.d"
  "/root/repo/src/apps/fft.cpp" "src/CMakeFiles/dsm.dir/apps/fft.cpp.o" "gcc" "src/CMakeFiles/dsm.dir/apps/fft.cpp.o.d"
  "/root/repo/src/apps/lu.cpp" "src/CMakeFiles/dsm.dir/apps/lu.cpp.o" "gcc" "src/CMakeFiles/dsm.dir/apps/lu.cpp.o.d"
  "/root/repo/src/apps/ocean.cpp" "src/CMakeFiles/dsm.dir/apps/ocean.cpp.o" "gcc" "src/CMakeFiles/dsm.dir/apps/ocean.cpp.o.d"
  "/root/repo/src/apps/raytrace.cpp" "src/CMakeFiles/dsm.dir/apps/raytrace.cpp.o" "gcc" "src/CMakeFiles/dsm.dir/apps/raytrace.cpp.o.d"
  "/root/repo/src/apps/registry.cpp" "src/CMakeFiles/dsm.dir/apps/registry.cpp.o" "gcc" "src/CMakeFiles/dsm.dir/apps/registry.cpp.o.d"
  "/root/repo/src/apps/volrend.cpp" "src/CMakeFiles/dsm.dir/apps/volrend.cpp.o" "gcc" "src/CMakeFiles/dsm.dir/apps/volrend.cpp.o.d"
  "/root/repo/src/apps/water_nsquared.cpp" "src/CMakeFiles/dsm.dir/apps/water_nsquared.cpp.o" "gcc" "src/CMakeFiles/dsm.dir/apps/water_nsquared.cpp.o.d"
  "/root/repo/src/apps/water_spatial.cpp" "src/CMakeFiles/dsm.dir/apps/water_spatial.cpp.o" "gcc" "src/CMakeFiles/dsm.dir/apps/water_spatial.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/dsm.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/dsm.dir/common/table.cpp.o.d"
  "/root/repo/src/harness/experiment.cpp" "src/CMakeFiles/dsm.dir/harness/experiment.cpp.o" "gcc" "src/CMakeFiles/dsm.dir/harness/experiment.cpp.o.d"
  "/root/repo/src/harness/report.cpp" "src/CMakeFiles/dsm.dir/harness/report.cpp.o" "gcc" "src/CMakeFiles/dsm.dir/harness/report.cpp.o.d"
  "/root/repo/src/mem/address_space.cpp" "src/CMakeFiles/dsm.dir/mem/address_space.cpp.o" "gcc" "src/CMakeFiles/dsm.dir/mem/address_space.cpp.o.d"
  "/root/repo/src/mem/diff.cpp" "src/CMakeFiles/dsm.dir/mem/diff.cpp.o" "gcc" "src/CMakeFiles/dsm.dir/mem/diff.cpp.o.d"
  "/root/repo/src/mem/home_table.cpp" "src/CMakeFiles/dsm.dir/mem/home_table.cpp.o" "gcc" "src/CMakeFiles/dsm.dir/mem/home_table.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/dsm.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/dsm.dir/net/network.cpp.o.d"
  "/root/repo/src/proto/hlrc_protocol.cpp" "src/CMakeFiles/dsm.dir/proto/hlrc_protocol.cpp.o" "gcc" "src/CMakeFiles/dsm.dir/proto/hlrc_protocol.cpp.o.d"
  "/root/repo/src/proto/sc_protocol.cpp" "src/CMakeFiles/dsm.dir/proto/sc_protocol.cpp.o" "gcc" "src/CMakeFiles/dsm.dir/proto/sc_protocol.cpp.o.d"
  "/root/repo/src/proto/swlrc_protocol.cpp" "src/CMakeFiles/dsm.dir/proto/swlrc_protocol.cpp.o" "gcc" "src/CMakeFiles/dsm.dir/proto/swlrc_protocol.cpp.o.d"
  "/root/repo/src/proto/tmlrc_protocol.cpp" "src/CMakeFiles/dsm.dir/proto/tmlrc_protocol.cpp.o" "gcc" "src/CMakeFiles/dsm.dir/proto/tmlrc_protocol.cpp.o.d"
  "/root/repo/src/proto/vector_clock.cpp" "src/CMakeFiles/dsm.dir/proto/vector_clock.cpp.o" "gcc" "src/CMakeFiles/dsm.dir/proto/vector_clock.cpp.o.d"
  "/root/repo/src/proto/write_notice.cpp" "src/CMakeFiles/dsm.dir/proto/write_notice.cpp.o" "gcc" "src/CMakeFiles/dsm.dir/proto/write_notice.cpp.o.d"
  "/root/repo/src/runtime/runtime.cpp" "src/CMakeFiles/dsm.dir/runtime/runtime.cpp.o" "gcc" "src/CMakeFiles/dsm.dir/runtime/runtime.cpp.o.d"
  "/root/repo/src/runtime/stats.cpp" "src/CMakeFiles/dsm.dir/runtime/stats.cpp.o" "gcc" "src/CMakeFiles/dsm.dir/runtime/stats.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/dsm.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/dsm.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/fiber.cpp" "src/CMakeFiles/dsm.dir/sim/fiber.cpp.o" "gcc" "src/CMakeFiles/dsm.dir/sim/fiber.cpp.o.d"
  "/root/repo/src/sync/barrier_manager.cpp" "src/CMakeFiles/dsm.dir/sync/barrier_manager.cpp.o" "gcc" "src/CMakeFiles/dsm.dir/sync/barrier_manager.cpp.o.d"
  "/root/repo/src/sync/lock_manager.cpp" "src/CMakeFiles/dsm.dir/sync/lock_manager.cpp.o" "gcc" "src/CMakeFiles/dsm.dir/sync/lock_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
