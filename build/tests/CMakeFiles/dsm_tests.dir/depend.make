# Empty dependencies file for dsm_tests.
# This may be replaced when dependencies are built.
