
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_apps.cpp" "tests/CMakeFiles/dsm_tests.dir/test_apps.cpp.o" "gcc" "tests/CMakeFiles/dsm_tests.dir/test_apps.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/dsm_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/dsm_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_harness.cpp" "tests/CMakeFiles/dsm_tests.dir/test_harness.cpp.o" "gcc" "tests/CMakeFiles/dsm_tests.dir/test_harness.cpp.o.d"
  "/root/repo/tests/test_mem.cpp" "tests/CMakeFiles/dsm_tests.dir/test_mem.cpp.o" "gcc" "tests/CMakeFiles/dsm_tests.dir/test_mem.cpp.o.d"
  "/root/repo/tests/test_net.cpp" "tests/CMakeFiles/dsm_tests.dir/test_net.cpp.o" "gcc" "tests/CMakeFiles/dsm_tests.dir/test_net.cpp.o.d"
  "/root/repo/tests/test_proto_whitebox.cpp" "tests/CMakeFiles/dsm_tests.dir/test_proto_whitebox.cpp.o" "gcc" "tests/CMakeFiles/dsm_tests.dir/test_proto_whitebox.cpp.o.d"
  "/root/repo/tests/test_protocol_edges.cpp" "tests/CMakeFiles/dsm_tests.dir/test_protocol_edges.cpp.o" "gcc" "tests/CMakeFiles/dsm_tests.dir/test_protocol_edges.cpp.o.d"
  "/root/repo/tests/test_protocols.cpp" "tests/CMakeFiles/dsm_tests.dir/test_protocols.cpp.o" "gcc" "tests/CMakeFiles/dsm_tests.dir/test_protocols.cpp.o.d"
  "/root/repo/tests/test_runtime.cpp" "tests/CMakeFiles/dsm_tests.dir/test_runtime.cpp.o" "gcc" "tests/CMakeFiles/dsm_tests.dir/test_runtime.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/dsm_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/dsm_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_stress.cpp" "tests/CMakeFiles/dsm_tests.dir/test_stress.cpp.o" "gcc" "tests/CMakeFiles/dsm_tests.dir/test_stress.cpp.o.d"
  "/root/repo/tests/test_sync.cpp" "tests/CMakeFiles/dsm_tests.dir/test_sync.cpp.o" "gcc" "tests/CMakeFiles/dsm_tests.dir/test_sync.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dsm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
