file(REMOVE_RECURSE
  "CMakeFiles/dsm_tests.dir/test_apps.cpp.o"
  "CMakeFiles/dsm_tests.dir/test_apps.cpp.o.d"
  "CMakeFiles/dsm_tests.dir/test_common.cpp.o"
  "CMakeFiles/dsm_tests.dir/test_common.cpp.o.d"
  "CMakeFiles/dsm_tests.dir/test_harness.cpp.o"
  "CMakeFiles/dsm_tests.dir/test_harness.cpp.o.d"
  "CMakeFiles/dsm_tests.dir/test_mem.cpp.o"
  "CMakeFiles/dsm_tests.dir/test_mem.cpp.o.d"
  "CMakeFiles/dsm_tests.dir/test_net.cpp.o"
  "CMakeFiles/dsm_tests.dir/test_net.cpp.o.d"
  "CMakeFiles/dsm_tests.dir/test_proto_whitebox.cpp.o"
  "CMakeFiles/dsm_tests.dir/test_proto_whitebox.cpp.o.d"
  "CMakeFiles/dsm_tests.dir/test_protocol_edges.cpp.o"
  "CMakeFiles/dsm_tests.dir/test_protocol_edges.cpp.o.d"
  "CMakeFiles/dsm_tests.dir/test_protocols.cpp.o"
  "CMakeFiles/dsm_tests.dir/test_protocols.cpp.o.d"
  "CMakeFiles/dsm_tests.dir/test_runtime.cpp.o"
  "CMakeFiles/dsm_tests.dir/test_runtime.cpp.o.d"
  "CMakeFiles/dsm_tests.dir/test_sim.cpp.o"
  "CMakeFiles/dsm_tests.dir/test_sim.cpp.o.d"
  "CMakeFiles/dsm_tests.dir/test_stress.cpp.o"
  "CMakeFiles/dsm_tests.dir/test_stress.cpp.o.d"
  "CMakeFiles/dsm_tests.dir/test_sync.cpp.o"
  "CMakeFiles/dsm_tests.dir/test_sync.cpp.o.d"
  "dsm_tests"
  "dsm_tests.pdb"
  "dsm_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
